package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveTrivial(t *testing.T) {
	got, total, err := Solve(nil)
	if err != nil || got != nil || total != 0 {
		t.Errorf("empty: %v %v %v", got, total, err)
	}
	got, total, err = Solve([][]float64{{}})
	if err != nil || len(got) != 1 || got[0] != -1 || total != 0 {
		t.Errorf("zero cols: %v %v %v", got, total, err)
	}
}

func TestSolveSquare(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rowToCol, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal is rows 0,1,2 -> cols 1,0,2 with total 1+2+2=5.
	if total != 5 {
		t.Errorf("total=%v want 5 (assignment %v)", total, rowToCol)
	}
	if rowToCol[0] != 1 || rowToCol[1] != 0 || rowToCol[2] != 2 {
		t.Errorf("assignment=%v", rowToCol)
	}
}

func TestSolveRectangularWide(t *testing.T) {
	// 2 rows, 4 cols: both rows must be matched to their cheapest distinct cols.
	cost := [][]float64{
		{9, 9, 1, 9},
		{9, 9, 0.5, 2},
	}
	rowToCol, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if rowToCol[0] != 2 || rowToCol[1] != 3 || total != 3 {
		t.Errorf("assignment=%v total=%v", rowToCol, total)
	}
}

func TestSolveRectangularTall(t *testing.T) {
	// 3 rows, 2 cols: exactly one row stays unmatched.
	cost := [][]float64{
		{1, 8},
		{2, 1},
		{0.1, 9},
	}
	rowToCol, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	unmatched := 0
	for _, j := range rowToCol {
		if j < 0 {
			unmatched++
		}
	}
	if unmatched != 1 {
		t.Fatalf("unmatched=%d want 1 (%v)", unmatched, rowToCol)
	}
	// Optimal: row2->col0 (0.1), row1->col1 (1), row0 unmatched. Total 1.1.
	if math.Abs(total-1.1) > 1e-9 {
		t.Errorf("total=%v want 1.1 (%v)", total, rowToCol)
	}
}

func TestSolveForbidden(t *testing.T) {
	cost := [][]float64{
		{Forbidden, 0.2},
		{Forbidden, Forbidden},
	}
	rowToCol, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if rowToCol[0] != 1 || rowToCol[1] != -1 {
		t.Errorf("assignment=%v", rowToCol)
	}
	if total != 0.2 {
		t.Errorf("total=%v", total)
	}
}

func TestSolveRagged(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

// Property: the dense solver matches the brute-force oracle's total cost on
// random small matrices, including forbidden entries.
func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := 1 + r.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if r.Intn(6) == 0 {
					cost[i][j] = Forbidden
				} else {
					cost[i][j] = math.Round(r.Float64()*100) / 100
				}
			}
		}
		_, gotTotal, err := Solve(cost)
		if err != nil {
			return false
		}
		_, wantTotal, err := BruteForce(cost)
		if err != nil {
			return false
		}
		return math.Abs(gotTotal-wantTotal) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: the solution is a valid partial matching — no column reused, all
// indices in range.
func TestSolveIsMatching(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := 1 + r.Intn(8)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = r.Float64()
			}
		}
		rowToCol, _, err := Solve(cost)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, j := range rowToCol {
			if j < -1 || j >= m {
				return false
			}
			if j >= 0 {
				if seen[j] {
					return false
				}
				seen[j] = true
			}
		}
		// With all finite costs and n<=m every row is matched; with n>m
		// exactly m rows are matched.
		want := n
		if m < n {
			want = m
		}
		return len(seen) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	cost := make([][]float64, 10)
	for i := range cost {
		cost[i] = make([]float64, 10)
	}
	if _, _, err := BruteForce(cost); err == nil {
		t.Error("oversized brute force accepted")
	}
}

func TestMatchSparseBasic(t *testing.T) {
	// Two components: {0,1}x{0,1} and {2}x{2}.
	edges := []Edge{
		{A: 0, B: 0, Cost: 0.9},
		{A: 0, B: 1, Cost: 0.1},
		{A: 1, B: 0, Cost: 0.1},
		{A: 1, B: 1, Cost: 0.2},
		{A: 2, B: 2, Cost: 0.5},
	}
	pairs := MatchSparse(3, 3, edges)
	if len(pairs) != 3 {
		t.Fatalf("pairs=%v", pairs)
	}
	want := map[int]int{0: 1, 1: 0, 2: 2}
	for _, p := range pairs {
		if want[p.A] != p.B {
			t.Errorf("pair %v, want A%d->B%d", p, p.A, want[p.A])
		}
	}
}

func TestMatchSparseCardinalityDominates(t *testing.T) {
	// Matching both pairs costs 1.0+1.0; matching only the cheap edge costs
	// 0.1. Max-cardinality semantics must pick both.
	edges := []Edge{
		{A: 0, B: 0, Cost: 0.1},
		{A: 0, B: 1, Cost: 1.0},
		{A: 1, B: 0, Cost: 1.0},
	}
	pairs := MatchSparse(2, 2, edges)
	if len(pairs) != 2 {
		t.Fatalf("want 2 pairs, got %v", pairs)
	}
}

func TestMatchSparseEmpty(t *testing.T) {
	if got := MatchSparse(5, 5, nil); got != nil {
		t.Errorf("no edges should yield no pairs: %v", got)
	}
}

func TestMatchSparseDuplicateEdges(t *testing.T) {
	edges := []Edge{
		{A: 0, B: 0, Cost: 0.9},
		{A: 0, B: 0, Cost: 0.2}, // cheaper duplicate wins
	}
	pairs := MatchSparse(1, 1, edges)
	if len(pairs) != 1 || pairs[0].Cost != 0.2 {
		t.Errorf("pairs=%v", pairs)
	}
}

// Property: MatchSparse equals dense Solve with absent edges Forbidden.
func TestMatchSparseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nA := 1 + r.Intn(6)
		nB := 1 + r.Intn(6)
		cost := make([][]float64, nA)
		var edges []Edge
		for i := range cost {
			cost[i] = make([]float64, nB)
			for j := range cost[i] {
				if r.Intn(3) == 0 {
					c := math.Round(r.Float64()*100) / 100
					cost[i][j] = c
					edges = append(edges, Edge{A: i, B: j, Cost: c})
				} else {
					cost[i][j] = Forbidden
				}
			}
		}
		pairs := MatchSparse(nA, nB, edges)
		sparseTotal := 0.0
		for _, p := range pairs {
			sparseTotal += p.Cost
		}
		rowToCol, denseTotal, err := Solve(cost)
		if err != nil {
			return false
		}
		denseCount := 0
		for _, j := range rowToCol {
			if j >= 0 {
				denseCount++
			}
		}
		// Same cardinality and same total cost (assignments may differ when
		// ties exist).
		return denseCount == len(pairs) && math.Abs(sparseTotal-denseTotal) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestGreedy(t *testing.T) {
	edges := []Edge{
		{A: 0, B: 0, Cost: 0.1},
		{A: 0, B: 1, Cost: 0.2},
		{A: 1, B: 0, Cost: 0.15},
		{A: 1, B: 1, Cost: 0.9},
	}
	pairs := Greedy(edges)
	// Greedy takes (0,0)@0.1 first, then (1,1)@0.9. Total 1.0 — worse than
	// optimal 0.35, which is exactly why it is the ablation baseline.
	if len(pairs) != 2 {
		t.Fatalf("pairs=%v", pairs)
	}
	if pairs[0].B != 0 || pairs[1].B != 1 {
		t.Errorf("pairs=%v", pairs)
	}
}

func TestGreedyDense(t *testing.T) {
	cost := [][]float64{
		{0.1, 0.2},
		{0.15, Forbidden},
	}
	rowToCol, total := GreedyDense(cost)
	if rowToCol[0] != 0 || rowToCol[1] != -1 {
		t.Errorf("assignment=%v", rowToCol)
	}
	if math.Abs(total-0.1) > 1e-12 {
		t.Errorf("total=%v", total)
	}
}

// Property: greedy never beats the exact solver, and both produce valid
// matchings.
func TestGreedyNeverBeatsExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = r.Float64()
			}
		}
		_, exact, err := Solve(cost)
		if err != nil {
			return false
		}
		_, greedy := GreedyDense(cost)
		return greedy >= exact-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveDense100(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 100
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}
