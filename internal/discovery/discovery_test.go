package discovery

import (
	"testing"

	"fuzzyfd/internal/embed"
	"fuzzyfd/internal/table"
)

func mkTable(name string, cols []string, rows ...[]string) *table.Table {
	t := table.New(name, cols...)
	for _, r := range rows {
		if err := t.AppendStrings(r...); err != nil {
			panic(err)
		}
	}
	return t
}

func corpus() (query *table.Table, tables []*table.Table) {
	query = mkTable("cities_q", []string{"city", "country"},
		[]string{"Berlin", "Germany"},
		[]string{"Toronto", "Canada"},
		[]string{"Barcelona", "Spain"},
	)
	unionable := mkTable("more_cities", []string{"town", "nation"},
		[]string{"Madrid", "Spain"},
		[]string{"Lisbon", "Portugal"},
		[]string{"Vienna", "Austria"},
	)
	joinable := mkTable("vaccination", []string{"place", "rate"},
		[]string{"Berlin", "63"},
		[]string{"Toronto", "83"},
		[]string{"Boston", "62"},
	)
	unrelated := mkTable("inventory", []string{"sku", "qty"},
		[]string{"SKU-1001", "5"},
		[]string{"SKU-2002", "9"},
		[]string{"SKU-3003", "2"},
	)
	return query, []*table.Table{unionable, joinable, unrelated, query}
}

func TestUnionables(t *testing.T) {
	query, tables := corpus()
	s := &Searcher{Emb: embed.NewMistral()}
	got, err := s.Unionables(query, tables, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no unionable candidates")
	}
	// Both city-domain tables are legitimately unionable: more_cities
	// shares the semantic type (via the country-domain feature) and
	// vaccination shares actual city values. Order between them is a
	// judgment call; the unrelated table must not appear.
	found := map[string]bool{}
	for _, c := range got {
		found[c.Table.Name] = true
		if c.Table.Name == "inventory" {
			t.Errorf("unrelated table ranked as unionable (score %.2f)", c.Score)
		}
		if c.Kind != Unionable || c.QueryColumn != -1 {
			t.Errorf("candidate meta: %+v", c)
		}
	}
	if !found["more_cities"] {
		t.Errorf("semantically unionable table missing: %v", found)
	}
}

func TestJoinables(t *testing.T) {
	query, tables := corpus()
	s := &Searcher{Emb: embed.NewMistral()}
	got, err := s.Joinables(query, tables, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no joinable candidates")
	}
	top := got[0]
	if top.Table.Name != "vaccination" {
		t.Errorf("top joinable=%s score=%.2f", top.Table.Name, top.Score)
	}
	// The matching pair is query.city × vaccination.place with 2/3 of the
	// query's cities contained.
	if top.QueryColumn != 0 || top.TableColumn != 0 {
		t.Errorf("join pair=(%d,%d)", top.QueryColumn, top.TableColumn)
	}
	if top.Score < 0.6 || top.Score > 0.7 {
		t.Errorf("containment=%.3f want ≈2/3", top.Score)
	}
}

func TestQueryExcludedFromResults(t *testing.T) {
	query, tables := corpus()
	s := &Searcher{Emb: embed.NewMistral()}
	u, err := s.Unionables(query, tables, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range u {
		if c.Table == query {
			t.Error("query returned as its own candidate")
		}
	}
}

func TestSearcherErrors(t *testing.T) {
	s := &Searcher{}
	if _, err := s.Unionables(nil, nil, 1); err == nil {
		t.Error("nil embedder accepted (union)")
	}
	if _, err := s.Joinables(nil, nil, 1); err == nil {
		t.Error("nil embedder accepted (join)")
	}
}

func TestMinScoreFilter(t *testing.T) {
	query, tables := corpus()
	s := &Searcher{Emb: embed.NewMistral(), MinScore: 0.99}
	got, err := s.Joinables(query, tables, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("strict MinScore should filter everything: %+v", got)
	}
}

func TestKindString(t *testing.T) {
	if Unionable.String() != "unionable" || Joinable.String() != "joinable" {
		t.Error("kind names")
	}
}
