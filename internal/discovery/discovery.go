// Package discovery implements the table-search step that precedes
// integration in the paper's pipeline (§1): given a query table and a
// corpus of data lake tables, rank candidates that are unionable (their
// columns align with the query's — table union search, Nargesian et al.
// 2018) or joinable (some column's values overlap a query column's — JOSIE,
// Zhu et al. 2019). The discovered set is exactly what Fuzzy Full
// Disjunction then integrates.
//
// Scores are content-based: unionability averages the best column-embedding
// similarity per query column; joinability takes the best set-containment
// of a query column's values in a candidate column. Both are intentionally
// simple, laptop-scale equivalents of the cited systems.
package discovery

import (
	"context"
	"errors"
	"math"
	"sort"
	"strings"

	"fuzzyfd/internal/embed"
	"fuzzyfd/internal/lexicon"
	"fuzzyfd/internal/strutil"
	"fuzzyfd/internal/table"
)

// Kind is the search mode a candidate was found under.
type Kind int

const (
	// Unionable candidates share the query's schema semantics.
	Unionable Kind = iota
	// Joinable candidates share values with some query column.
	Joinable
)

// String names the kind.
func (k Kind) String() string {
	if k == Joinable {
		return "joinable"
	}
	return "unionable"
}

// Candidate is one ranked search result.
type Candidate struct {
	Table *table.Table
	Score float64
	Kind  Kind
	// QueryColumn and TableColumn identify the best-matching column pair
	// (join search) or are -1 (union search).
	QueryColumn int
	TableColumn int
}

// ErrNoEmbedder is returned when a Searcher has no embedder.
var ErrNoEmbedder = errors.New("discovery: nil embedder")

// Searcher ranks corpus tables against a query table.
type Searcher struct {
	Emb embed.Embedder
	// MinScore filters candidates below this score. The default is
	// deliberately permissive (0.2): the value inconsistencies that
	// motivate fuzzy integration also depress exact-overlap join scores,
	// so borderline candidates are worth surfacing.
	MinScore float64
	// SampleSize bounds per-column work (default 64 distinct values).
	SampleSize int
}

func (s *Searcher) minScore() float64 {
	if s.MinScore == 0 {
		return 0.2
	}
	return s.MinScore
}

func (s *Searcher) sampleSize() int {
	if s.SampleSize <= 0 {
		return 64
	}
	return s.SampleSize
}

// Unionables returns the top-k corpus tables ranked by unionability with
// the query: the mean, over the query's columns, of the best cosine
// similarity to any candidate column (matching kinds only).
func (s *Searcher) Unionables(query *table.Table, corpus []*table.Table, k int) ([]Candidate, error) {
	return s.UnionablesContext(context.Background(), query, corpus, k)
}

// UnionablesContext is Unionables under a context, checked once per corpus
// table so large corpora cancel promptly.
func (s *Searcher) UnionablesContext(ctx context.Context, query *table.Table, corpus []*table.Table, k int) ([]Candidate, error) {
	if s.Emb == nil {
		return nil, ErrNoEmbedder
	}
	qvecs, qkinds := s.columnProfiles(query)
	var out []Candidate
	for _, cand := range corpus {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cand == query {
			continue
		}
		cvecs, ckinds := s.columnProfiles(cand)
		if len(qvecs) == 0 || len(cvecs) == 0 {
			continue
		}
		total := 0.0
		for qi := range qvecs {
			best := 0.0
			for ci := range cvecs {
				if !kindsMatch(qkinds[qi], ckinds[ci]) {
					continue
				}
				if sim := 1 - embed.CosineDistance(qvecs[qi], cvecs[ci]); sim > best {
					best = sim
				}
			}
			total += best
		}
		score := total / float64(len(qvecs))
		if score >= s.minScore() {
			out = append(out, Candidate{Table: cand, Score: score, Kind: Unionable, QueryColumn: -1, TableColumn: -1})
		}
	}
	return topK(out, k), nil
}

// Joinables returns the top-k corpus tables ranked by the best value
// containment of some query column in some candidate column:
// |Q ∩ C| / |Q| over folded distinct values.
func (s *Searcher) Joinables(query *table.Table, corpus []*table.Table, k int) ([]Candidate, error) {
	return s.JoinablesContext(context.Background(), query, corpus, k)
}

// JoinablesContext is Joinables under a context, checked once per corpus
// table so large corpora cancel promptly.
func (s *Searcher) JoinablesContext(ctx context.Context, query *table.Table, corpus []*table.Table, k int) ([]Candidate, error) {
	if s.Emb == nil {
		return nil, ErrNoEmbedder
	}
	qsets := s.valueSets(query)
	var out []Candidate
	for _, cand := range corpus {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cand == query {
			continue
		}
		csets := s.valueSets(cand)
		best := Candidate{Table: cand, Kind: Joinable, QueryColumn: -1, TableColumn: -1}
		for qi, qs := range qsets {
			if len(qs) == 0 {
				continue
			}
			for ci, cs := range csets {
				inter := 0
				for v := range qs {
					if cs[v] {
						inter++
					}
				}
				score := float64(inter) / float64(len(qs))
				if score > best.Score {
					best.Score = score
					best.QueryColumn = qi
					best.TableColumn = ci
				}
			}
		}
		if best.Score >= s.minScore() {
			out = append(out, best)
		}
	}
	return topK(out, k), nil
}

// columnProfiles embeds every column of t (mean of sampled distinct value
// embeddings, plus domain features) and infers its kind.
//
// The domain features make semantic-type similarity visible without shared
// values: when a column's values resolve to a knowledge-lexicon namespace
// ("country/", "currency/", ...), a pseudo-value embedding of that
// namespace is blended in, weighted by the share of resolving values. Two
// country columns with disjoint countries then still profile as the same
// semantic type — the role real LLM column embeddings play in the cited
// union-search systems.
func (s *Searcher) columnProfiles(t *table.Table) ([]embed.Vector, []table.Kind) {
	lex := lexicon.Full()
	vecs := make([]embed.Vector, t.NumCols())
	kinds := make([]table.Kind, t.NumCols())
	for ci := range t.Columns {
		kinds[ci] = table.InferColumn(t, ci).Kind
		vals, _ := t.DistinctColumnValues(ci)
		if len(vals) > s.sampleSize() {
			vals = vals[:s.sampleSize()]
		}
		acc := make([]float64, s.Emb.Dim())
		domains := make(map[string]int)
		for _, v := range vals {
			for i, x := range s.Emb.Embed(v) {
				acc[i] += float64(x)
			}
			if id, ok := lex.Lookup(v); ok {
				if slash := strings.IndexByte(id, '/'); slash > 0 {
					domains[id[:slash+1]]++
				}
			}
		}
		for ns, count := range domains {
			w := 2 * float64(count)
			for i, x := range s.Emb.Embed("⟨domain:" + ns + "⟩") {
				acc[i] += w * float64(x)
			}
		}
		vec := make(embed.Vector, len(acc))
		var norm float64
		for _, x := range acc {
			norm += x * x
		}
		if norm > 0 {
			inv := 1 / math.Sqrt(norm)
			for i, x := range acc {
				vec[i] = float32(x * inv)
			}
		}
		vecs[ci] = vec
	}
	return vecs, kinds
}

// valueSets returns each column's folded distinct value set (sampled).
func (s *Searcher) valueSets(t *table.Table) []map[string]bool {
	out := make([]map[string]bool, t.NumCols())
	for ci := range t.Columns {
		vals, _ := t.DistinctColumnValues(ci)
		if len(vals) > s.sampleSize()*4 {
			vals = vals[:s.sampleSize()*4]
		}
		set := make(map[string]bool, len(vals))
		for _, v := range vals {
			set[strutil.Fold(v)] = true
		}
		out[ci] = set
	}
	return out
}

func kindsMatch(a, b table.Kind) bool {
	if a == table.KindEmpty || b == table.KindEmpty || a == b {
		return true
	}
	numeric := func(k table.Kind) bool { return k == table.KindInt || k == table.KindFloat }
	return numeric(a) && numeric(b)
}

func topK(cands []Candidate, k int) []Candidate {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Table.Name < cands[j].Table.Name
	})
	if k > 0 && len(cands) > k {
		cands = cands[:k]
	}
	return cands
}
