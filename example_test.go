package fuzzyfd_test

import (
	"fmt"

	"fuzzyfd"
)

// The paper's running example: three COVID-19 tables whose join values
// disagree by a typo, a case variant, and country codes. Fuzzy Full
// Disjunction resolves the inconsistencies and integrates them into five
// complete rows.
func ExampleIntegrate() {
	t1 := fuzzyfd.NewTable("T1", "City", "Country")
	t1.MustAppendRow(fuzzyfd.String("Berlinn"), fuzzyfd.String("Germany"))
	t1.MustAppendRow(fuzzyfd.String("Toronto"), fuzzyfd.String("Canada"))

	t2 := fuzzyfd.NewTable("T2", "Country", "City", "VacRate")
	t2.MustAppendRow(fuzzyfd.String("CA"), fuzzyfd.String("Toronto"), fuzzyfd.String("83%"))
	t2.MustAppendRow(fuzzyfd.String("DE"), fuzzyfd.String("Berlin"), fuzzyfd.String("63%"))

	res, err := fuzzyfd.Integrate([]*fuzzyfd.Table{t1, t2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("rows:", res.Table.NumRows())
	for _, row := range res.Table.Rows {
		fmt.Println(row[0].Val, "|", row[1].Val, "|", row[2].String())
	}
	// "Berlinn" and "Berlin" occur once each — a frequency tie — so the
	// representative comes from the first table, per the paper's rule.
	// Output:
	// rows: 2
	// Berlinn | Germany | 63%
	// Toronto | Canada | 83%
}

// WithEquiJoin disables value matching: the same input integrates only on
// exactly equal values, leaving the typo and code variants fragmented.
func ExampleWithEquiJoin() {
	t1 := fuzzyfd.NewTable("T1", "City", "Country")
	t1.MustAppendRow(fuzzyfd.String("Berlinn"), fuzzyfd.String("Germany"))

	t2 := fuzzyfd.NewTable("T2", "Country", "City", "VacRate")
	t2.MustAppendRow(fuzzyfd.String("DE"), fuzzyfd.String("Berlin"), fuzzyfd.String("63%"))

	res, err := fuzzyfd.Integrate([]*fuzzyfd.Table{t1, t2}, fuzzyfd.WithEquiJoin())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("rows:", res.Table.NumRows())
	// Output:
	// rows: 2
}

// MatchValues exposes the fuzzy value-matching component on its own: the
// City columns of the paper's Figure 2.
func ExampleMatchValues() {
	clusters, err := fuzzyfd.MatchValues([][]string{
		{"Berlinn", "Toronto", "Barcelona", "New Delhi"},
		{"Toronto", "Boston", "Berlin", "Barcelona"},
		{"Berlin", "barcelona", "Boston"},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("clusters:", len(clusters))
	for _, c := range clusters {
		if c.Rep == "Berlin" {
			fmt.Println("Berlin cluster size:", len(c.Members))
		}
	}
	// Output:
	// clusters: 5
	// Berlin cluster size: 3
}
