module fuzzyfd

go 1.24
