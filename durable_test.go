package fuzzyfd_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"fuzzyfd"
)

// End-to-end durability on a real filesystem: a session opened on disk,
// closed, and reopened serves the identical integration result, restores
// snapshotted component closures, and keeps accepting new tables.
func TestOpenSessionReopenOnDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")

	t1 := fuzzyfd.NewTable("people", "name", "city")
	t1.MustAppendRow(fuzzyfd.String("alice"), fuzzyfd.String("Berlin"))
	t1.MustAppendRow(fuzzyfd.String("bob"), fuzzyfd.String("Paris"))
	t2 := fuzzyfd.NewTable("jobs", "name", "job")
	t2.MustAppendRow(fuzzyfd.String("Alice"), fuzzyfd.String("eng")) // fuzzy-matches alice
	t2.MustAppendRow(fuzzyfd.String("carol"), fuzzyfd.String("ops"))
	t3 := fuzzyfd.NewTable("ages", "name", "age")
	t3.MustAppendRow(fuzzyfd.String("bob"), fuzzyfd.String("41"))

	s, err := fuzzyfd.OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Durable() {
		t.Fatal("OpenSession returned a non-durable session")
	}
	if err := s.Append(t1, t2); err != nil {
		t.Fatal(err)
	}
	want, err := s.Integrate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, err := fuzzyfd.OpenSession(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if n := s2.Tables(); n != 2 {
		t.Fatalf("reopened session has %d tables, want 2", n)
	}
	got, err := s2.Integrate()
	if err != nil {
		t.Fatalf("integrate after reopen: %v", err)
	}
	if !got.Table.Equal(want.Table) || !reflect.DeepEqual(got.Prov, want.Prov) {
		t.Fatalf("reopened result diverges:\ngot\n%v %v\nwant\n%v %v",
			got.Table, got.Prov, want.Table, want.Prov)
	}
	if got.FDStats.RestoredComps == 0 {
		t.Error("reopen re-closed every component instead of restoring from the snapshot")
	}

	// The reopened session keeps integrating new tables incrementally.
	if err := s2.Append(t3); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Integrate()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := fuzzyfd.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	oracle.Add(t1, t2, t3)
	wantAll, err := oracle.Integrate()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Table.Equal(wantAll.Table) || !reflect.DeepEqual(res.Prov, wantAll.Prov) {
		t.Fatalf("post-reopen integration diverges:\ngot\n%v %v\nwant\n%v %v",
			res.Table, res.Prov, wantAll.Table, wantAll.Prov)
	}
}

// WithDurability knobs pass through: NoSync sessions work, and a forced
// Flush compacts the log so the reopen replays nothing.
func TestOpenSessionWithDurability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	s, err := fuzzyfd.OpenSession(dir,
		fuzzyfd.WithEquiJoin(),
		fuzzyfd.WithDurability(fuzzyfd.Durability{SnapshotEvery: -1, NoSync: true}))
	if err != nil {
		t.Fatal(err)
	}
	tb := fuzzyfd.NewTable("t", "k", "v")
	tb.MustAppendRow(fuzzyfd.String("k1"), fuzzyfd.String("v1"))
	if err := s.Append(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Integrate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := fuzzyfd.OpenSession(dir, fuzzyfd.WithEquiJoin())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if n := s2.Tables(); n != 1 {
		t.Fatalf("reopened session has %d tables, want 1", n)
	}
}
