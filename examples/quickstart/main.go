// Quickstart: the paper's running example (Figure 1). Three tables about
// COVID-19 cases in different cities carry a typo ("Berlinn"), a case
// variant ("barcelona"), and country codes ("CA" for Canada). Regular Full
// Disjunction integrates them on equal values only and leaves nine
// partially-integrated tuples; Fuzzy Full Disjunction resolves the
// inconsistencies first and produces the five fully-integrated ones.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fuzzyfd"
)

func main() {
	t1 := fuzzyfd.NewTable("T1", "City", "Country")
	t1.MustAppendRow(fuzzyfd.String("Berlinn"), fuzzyfd.String("Germany"))
	t1.MustAppendRow(fuzzyfd.String("Toronto"), fuzzyfd.String("Canada"))
	t1.MustAppendRow(fuzzyfd.String("Barcelona"), fuzzyfd.String("Spain"))
	t1.MustAppendRow(fuzzyfd.String("New Delhi"), fuzzyfd.String("India"))

	t2 := fuzzyfd.NewTable("T2", "Country", "City", "Vac. Rate (1+ dose)")
	t2.MustAppendRow(fuzzyfd.String("CA"), fuzzyfd.String("Toronto"), fuzzyfd.String("83%"))
	t2.MustAppendRow(fuzzyfd.String("US"), fuzzyfd.String("Boston"), fuzzyfd.String("62%"))
	t2.MustAppendRow(fuzzyfd.String("DE"), fuzzyfd.String("Berlin"), fuzzyfd.String("63%"))
	t2.MustAppendRow(fuzzyfd.String("ES"), fuzzyfd.String("Barcelona"), fuzzyfd.String("82%"))

	t3 := fuzzyfd.NewTable("T3", "City", "Total Cases", "Death Rate (per 100k)")
	t3.MustAppendRow(fuzzyfd.String("Berlin"), fuzzyfd.String("1.4M"), fuzzyfd.String("147"))
	t3.MustAppendRow(fuzzyfd.String("barcelona"), fuzzyfd.String("2.68M"), fuzzyfd.String("275"))
	t3.MustAppendRow(fuzzyfd.String("Boston"), fuzzyfd.String("263K"), fuzzyfd.String("335"))

	tables := []*fuzzyfd.Table{t1, t2, t3}

	regular, err := fuzzyfd.Integrate(tables, fuzzyfd.WithEquiJoin())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FD(T1, T2, T3) — regular Full Disjunction (equi-join):")
	fmt.Println(regular.TableWithProvenance())

	fuzzy, err := fuzzyfd.Integrate(tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fuzzy FD(T1, T2, T3) — with value matching:")
	fmt.Println(fuzzy.TableWithProvenance())

	fmt.Printf("regular FD: %d rows; fuzzy FD: %d rows\n",
		regular.Table.NumRows(), fuzzy.Table.NumRows())
	fmt.Printf("value matching merged %d cluster(s) and rewrote %d cell value(s) in %v\n",
		fuzzy.MatchStats.Merged, fuzzy.MatchStats.Rewrites, fuzzy.Timings.Match)
}
