// Auto-Join example: generate one fuzzy-joinable integration set (the
// workload behind the paper's Table 1), run the value-matching component
// with two embedding models, and compare their precision/recall/F1 against
// the gold matching. The weak tier (FastText) misses the synonym and
// abbreviation matches the strong tier (Mistral) resolves.
//
// Run with: go run ./examples/autojoin
package main

import (
	"fmt"
	"log"

	"fuzzyfd"
	"fuzzyfd/internal/datagen"
	"fuzzyfd/internal/match"
	"fuzzyfd/internal/metrics"
)

func main() {
	sets := datagen.AutoJoin(datagen.AutoJoinConfig{Seed: 7, Sets: 4, ValuesPerColumn: 60})
	set := sets[3] // a countries set: lexicon synonyms in play
	fmt.Printf("integration set %q (topic: %s), %d aligning columns\n",
		set.Name, set.Topic, len(set.Columns))
	for ci, col := range set.Columns {
		fmt.Printf("  column %d: %d values, e.g. %q\n", ci, len(col.Values), col.Values[:3])
	}
	fmt.Println()

	for _, model := range []string{fuzzyfd.ModelFastText, fuzzyfd.ModelMistral} {
		cols := make([][]string, len(set.Columns))
		for i, c := range set.Columns {
			cols[i] = c.Values
		}
		clusters, err := fuzzyfd.MatchValues(cols, fuzzyfd.WithModel(model))
		if err != nil {
			log.Fatal(err)
		}
		prf := evaluate(set, clusters)
		stats := match.Summarize(clusters)
		fmt.Printf("%-10s %v  (%d clusters, %d merged)\n", model, prf, stats.Clusters, stats.Merged)

		// Show a few non-trivial merges.
		shown := 0
		for _, c := range clusters {
			if len(c.Members) < 2 || allEqual(c) {
				continue
			}
			fmt.Printf("    %q <- %v\n", c.Rep, memberValues(c))
			if shown++; shown == 4 {
				break
			}
		}
		fmt.Println()
	}
}

func evaluate(set *datagen.IntegrationSet, clusters []fuzzyfd.ValueCluster) metrics.PRF {
	return set.Evaluate(clusters)
}

func allEqual(c fuzzyfd.ValueCluster) bool {
	for _, m := range c.Members {
		if m.Value != c.Rep {
			return false
		}
	}
	return true
}

func memberValues(c fuzzyfd.ValueCluster) []string {
	out := make([]string, len(c.Members))
	for i, m := range c.Members {
		out[i] = m.Value
	}
	return out
}
