// Server: the fuzzyfdd serving path, end to end, in one process. An
// in-process daemon hosts a session; ten clients concurrently POST the
// paper's Figure-1-style tables plus per-city extension tables, the server
// coalesces the burst into a handful of incremental integrations, a
// subscriber follows the progress stream, and the integrated result comes
// back as JSON Lines — followed by the /metrics exposition and a graceful
// drain.
//
// Run with: go run ./examples/server
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"fuzzyfd/internal/server"
)

func main() {
	srv := server.New(server.Config{MaxSessions: 8, Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("fuzzyfdd serving on %s\n\n", ts.URL)

	must(request(http.MethodPut, ts.URL+"/v1/sessions/covid", `{"equi": true}`))

	// Follow the session's progress stream while the clients integrate.
	events, err := http.Get(ts.URL + "/v1/sessions/covid/events")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	go func() {
		sc := bufio.NewScanner(events.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				fmt.Printf("  progress %s\n", strings.TrimPrefix(line, "data: "))
			}
		}
	}()

	// Ten concurrent clients, one table each. The batcher coalesces the
	// burst: the first add integrates alone, everything arriving while it
	// runs lands in one follow-up integration.
	tables := map[string]string{
		"cases":  line(`{"city":"Berlin","cases":"1.4M"}`, `{"city":"Barcelona","cases":"2.68M"}`, `{"city":"Boston","cases":"263K"}`),
		"vacc":   line(`{"city":"Toronto","vacc":"83%"}`, `{"city":"Boston","vacc":"62%"}`, `{"city":"Berlin","vacc":"63%"}`),
		"deaths": line(`{"city":"Berlin","deaths":"147"}`, `{"city":"Barcelona","deaths":"275"}`),
	}
	for i := 0; i < 7; i++ {
		name := fmt.Sprintf("extra%d", i)
		tables[name] = line(fmt.Sprintf(`{"city":"City%d","%s":"v"}`, i, name))
	}
	var wg sync.WaitGroup
	for name, body := range tables {
		wg.Add(1)
		go func(name, body string) {
			defer wg.Done()
			out := must(request(http.MethodPost, ts.URL+"/v1/sessions/covid/tables?table="+name, body))
			fmt.Printf("added %-8s -> %s", name, out)
		}(name, body)
	}
	wg.Wait()

	info := must(request(http.MethodGet, ts.URL+"/v1/sessions/covid", ""))
	fmt.Printf("\nsession after the burst (note integrations << tables):\n%s\n", info)

	fmt.Println("integrated result, streamed as JSON Lines:")
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions/covid/result", nil)
	req.Header.Set("Accept", "application/jsonl")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	rows, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Print(string(rows))

	metricsText := must(request(http.MethodGet, ts.URL+"/metrics", ""))
	fmt.Println("\nselected metrics:")
	for _, ln := range strings.Split(metricsText, "\n") {
		if strings.HasPrefix(ln, "fuzzyfdd_sessions ") ||
			strings.HasPrefix(ln, "fuzzyfdd_integrations_total") ||
			strings.HasPrefix(ln, "fuzzyfdd_add_requests_total") ||
			strings.HasPrefix(ln, "fuzzyfdd_session_rows") {
			fmt.Println("  " + ln)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	srv.Close()
	fmt.Println("\ndrained and stopped.")
}

func line(rows ...string) string { return strings.Join(rows, "\n") }

func request(method, url, body string) (string, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("%s %s: %d: %s", method, url, resp.StatusCode, data)
	}
	return string(data), nil
}

func must(out string, err error) string {
	if err != nil {
		log.Fatal(err)
	}
	return out
}
