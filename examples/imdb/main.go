// IMDB efficiency example (the workload behind the paper's Figure 3):
// generate the six-table IMDB-shaped benchmark at a small size, integrate
// it with regular FD and with Fuzzy FD, and report per-phase timings. The
// benchmark is equi-join (values are consistent), so the fuzzy value
// matcher does the full candidate check but finds nothing to rewrite — its
// cost is the pure overhead Figure 3 shows to be negligible.
//
// Run with: go run ./examples/imdb
package main

import (
	"fmt"
	"log"

	"fuzzyfd"
	"fuzzyfd/internal/datagen"
)

func main() {
	tables := datagen.IMDB(datagen.IMDBConfig{Seed: 42, TotalTuples: 3000})
	fmt.Printf("IMDB benchmark: %d input tuples across %d tables\n", datagen.TotalRows(tables), len(tables))
	for _, t := range tables {
		fmt.Printf("  %-18s %5d rows\n", t.Name, t.NumRows())
	}
	fmt.Println()

	regular, err := fuzzyfd.Integrate(tables, fuzzyfd.WithEquiJoin())
	if err != nil {
		log.Fatal(err)
	}
	fuzzy, err := fuzzyfd.Integrate(tables)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-20s rows=%5d  fd=%8v  total=%8v\n",
		"Regular FD (ALITE)", regular.Table.NumRows(), regular.Timings.FD, regular.Timings.Total)
	fmt.Printf("%-20s rows=%5d  fd=%8v  total=%8v  (match phase: %v, %d rewrites)\n",
		"Fuzzy FD", fuzzy.Table.NumRows(), fuzzy.Timings.FD, fuzzy.Timings.Total,
		fuzzy.Timings.Match, fuzzy.MatchStats.Rewrites)

	overhead := float64(fuzzy.Timings.Total-regular.Timings.Total) / float64(regular.Timings.Total) * 100
	fmt.Printf("\nfuzzy overhead over regular FD: %+.1f%% — the Figure 3 story\n", overhead)

	// Parallel FD (the Paganelli et al. extension) on the same input.
	par, err := fuzzyfd.Integrate(tables, fuzzyfd.WithEquiJoin(), fuzzyfd.WithParallelFD(8))
	if err != nil {
		log.Fatal(err)
	}
	if par.Table.NumRows() != regular.Table.NumRows() {
		log.Fatalf("parallel FD disagrees: %d vs %d rows", par.Table.NumRows(), regular.Table.NumRows())
	}
	fmt.Printf("parallel FD (8 workers): fd=%v (same %d rows)\n", par.Timings.FD, par.Table.NumRows())
}
