// Data-lake example: the paper's full pipeline. §1 motivates Fuzzy FD as
// the step after table discovery — a data scientist searches the lake for
// tables relevant to a query table, then integrates what was found. This
// example builds a small lake (the COVID tables of Fig. 1 plus IMDB-shaped
// and entity tables as distractors), discovers the joinable tables for the
// cities query, and hands the discovered set to Fuzzy Full Disjunction.
//
// Run with: go run ./examples/datalake
package main

import (
	"fmt"
	"log"

	"fuzzyfd"
	"fuzzyfd/internal/datagen"
	"fuzzyfd/internal/table"
)

func main() {
	query := table.New("covid_cities", "City", "Country")
	query.MustAppendRow(table.S("Berlinn"), table.S("Germany"))
	query.MustAppendRow(table.S("Toronto"), table.S("Canada"))
	query.MustAppendRow(table.S("Barcelona"), table.S("Spain"))
	query.MustAppendRow(table.S("New Delhi"), table.S("India"))

	lake := buildLake()
	fmt.Printf("data lake: %d tables\n\n", len(lake))

	// Note: the same value inconsistencies that motivate Fuzzy FD also
	// depress exact-overlap join search ("Berlinn" hides the join with
	// "Berlin"), so discovery keeps the top matches permissively and
	// integration resolves the fuzz.
	candidates, err := fuzzyfd.DiscoverJoinable(query, lake, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("join search results for covid_cities:")
	integration := []*fuzzyfd.Table{query}
	for _, c := range candidates {
		fmt.Printf("  %-18s score=%.2f via %s ↔ %s\n",
			c.Table.Name, c.Score,
			query.Columns[c.QueryColumn], c.Table.Columns[c.TableColumn])
		integration = append(integration, c.Table)
	}
	fmt.Println()

	// Integrate the discovered set. Headers differ across sources, so align
	// columns by content.
	res, err := fuzzyfd.Integrate(integration, fuzzyfd.WithContentAlignment(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrated %d discovered tables into %d rows:\n\n", len(integration), res.Table.NumRows())
	fmt.Println(res.TableWithProvenance())
}

// buildLake assembles the corpus: the two joinable COVID tables from the
// paper's Fig. 1 (with different headers, as in a real lake) plus
// distractor tables from the generators.
func buildLake() []*table.Table {
	vax := table.New("vaccination", "nation", "place", "vax_rate")
	vax.MustAppendRow(table.S("CA"), table.S("Toronto"), table.S("83%"))
	vax.MustAppendRow(table.S("US"), table.S("Boston"), table.S("62%"))
	vax.MustAppendRow(table.S("DE"), table.S("Berlin"), table.S("63%"))
	vax.MustAppendRow(table.S("ES"), table.S("Barcelona"), table.S("82%"))

	cases := table.New("case_counts", "town", "total_cases", "death_rate")
	cases.MustAppendRow(table.S("Berlin"), table.S("1.4M"), table.S("147"))
	cases.MustAppendRow(table.S("barcelona"), table.S("2.68M"), table.S("275"))
	cases.MustAppendRow(table.S("Boston"), table.S("263K"), table.S("335"))

	lake := []*table.Table{vax, cases}
	lake = append(lake, datagen.IMDB(datagen.IMDBConfig{Seed: 3, TotalTuples: 400})...)
	lake = append(lake, datagen.EMBench(datagen.EMConfig{Seed: 5, Entities: 30}).Tables...)
	return lake
}
