// Entity-matching example (the paper's §3.2 downstream task): integrate
// the EM benchmark with regular FD and with Fuzzy FD, run entity matching
// over each integrated table, and compare pairwise precision/recall/F1
// against the gold entity labels. Fuzzy FD's better integration both
// removes false positives (complete rows expose conflicting attributes)
// and recovers true matches (fuzzy variants integrate into single rows).
//
// Run with: go run ./examples/entitymatching
package main

import (
	"fmt"
	"log"

	"fuzzyfd"
	"fuzzyfd/internal/datagen"
	"fuzzyfd/internal/em"
)

func main() {
	bench := datagen.EMBench(datagen.EMConfig{Seed: 42, Entities: 120})
	fmt.Printf("EM benchmark: %d tables, %d labeled tuples\n", len(bench.Tables), len(bench.Gold))
	for _, t := range bench.Tables {
		fmt.Printf("  %-12s %4d rows  columns=%v\n", t.Name, t.NumRows(), t.Columns)
	}
	fmt.Println()

	for _, equi := range []bool{true, false} {
		var opts []fuzzyfd.Option
		name := "Fuzzy FD"
		if equi {
			opts = append(opts, fuzzyfd.WithEquiJoin())
			name = "Regular FD (ALITE)"
		}
		res, err := fuzzyfd.Integrate(bench.Tables, opts...)
		if err != nil {
			log.Fatal(err)
		}
		prf := em.Evaluate(res.FDResult(), bench.Gold, em.Options{})
		fmt.Printf("%-20s integrated to %4d rows; entity matching: %v\n",
			name, res.Table.NumRows(), prf)
	}
}
