package fuzzyfd

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"fuzzyfd/internal/datagen"
)

// streamLines drains Session.StreamContext into a sorted multiset of
// row+provenance lines.
func streamLines(t *testing.T, s *Session) ([]string, *Result) {
	t.Helper()
	var lines []string
	res, err := s.StreamContext(context.Background(), func(schema Schema, row Row, prov []TID) error {
		key := ""
		for _, c := range row {
			if c.IsNull {
				key += "\x00⊥"
			} else {
				key += "\x00" + c.Val
			}
		}
		lines = append(lines, key+"|"+fmt.Sprint(prov))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(lines)
	return lines, res
}

// resultLines renders a materialized Result the same way.
func resultLines(res *Result) []string {
	lines := make([]string, len(res.Table.Rows))
	for i, row := range res.Table.Rows {
		key := ""
		for _, c := range row {
			if c.IsNull {
				key += "\x00⊥"
			} else {
				key += "\x00" + c.Val
			}
		}
		lines[i] = key + "|" + fmt.Sprint(res.Prov[i])
	}
	sort.Strings(lines)
	return lines
}

// TestSessionStreamMatchesIntegrate: Session.StreamContext emits the same
// row-and-provenance multiset as Integrate at every batch of an
// incremental feed — the first stream computes everything, later streams
// emit re-closed components live and replay the clean remainder from the
// session cache.
func TestSessionStreamMatchesIntegrate(t *testing.T) {
	tables := datagen.IMDB(datagen.IMDBConfig{Seed: 7, TotalTuples: 240})
	for _, opts := range [][]Option{nil, {WithParallelFD(4)}, {WithEquiJoin()}} {
		streamSess, err := NewSession(opts...)
		if err != nil {
			t.Fatal(err)
		}
		oracleSess, err := NewSession(opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range chunkTables(tables, 2) {
			streamSess.Add(batch...)
			oracleSess.Add(batch...)
			got, res := streamLines(t, streamSess)
			want, err := oracleSess.Integrate()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, resultLines(want)) {
				t.Fatalf("streamed multiset differs from Integrate at %d tables", streamSess.Tables())
			}
			if res.Table != nil || res.Prov != nil {
				t.Fatal("stream result carries a materialized table")
			}
			if res.FDStats.Output != len(got) {
				t.Fatalf("stream FDStats.Output=%d, emitted %d", res.FDStats.Output, len(got))
			}
		}
	}
}

// TestSessionStreamEmitError: a failing emit aborts with the sink error
// and leaves the session able to integrate normally afterwards.
func TestSessionStreamEmitError(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	a := NewTable("a", "k", "x")
	a.MustAppendRow(String("k1"), String("v1"))
	b := NewTable("b", "k", "y")
	b.MustAppendRow(String("k1"), String("v2"))
	s.Add(a, b)
	boom := errors.New("sink failed")
	if _, err := s.StreamContext(context.Background(), func(Schema, Row, []TID) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("want sink error, got %v", err)
	}
	res, err := s.Integrate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("session broken after aborted stream")
	}
}
